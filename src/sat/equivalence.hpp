// Combinational equivalence checking via SAT miters.
//
// Two roles in the TrojanZero flow:
//  * prove a salvaged circuit N' is NOT equivalent to N (Algorithm 1 removals
//    are real functional changes hidden from the defender's patterns) and
//    extract the distinguishing input vector;
//  * extract HT trigger witnesses: an input under which the infected circuit
//    N'' differs from N.
//
// check_equivalence is a thin wrapper over sat::IncrementalMiter
// (sat/miter.hpp): per-output cone-sliced queries on one persistent arena
// solver, structural sharing between the two netlists, and a BitSimulator
// random-pattern pre-pass. Env knobs (see README env matrix): TZ_SAT_PREPASS=0
// disables the pre-pass, TZ_SAT_DIMACS=<path> dumps the final CNF.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/types.hpp"

namespace tz::sat {

struct EquivalenceResult {
  bool equivalent = false;
  bool decided = true;  ///< false when the conflict limit was hit.
  /// When not equivalent: an input assignment (by PI index) exposing a
  /// differing primary output.
  std::vector<bool> counterexample;
  /// The DFF frame-input assignment of the same witness, indexed by netlist
  /// `a`'s dff order. DFFs present only in `b` (an inserted HT's counter) are
  /// pinned to their reset state 0 by the miter, so `counterexample` +
  /// `dff_values` (+ zeros for b's extras) replays through BitSimulator.
  std::vector<bool> dff_values;
  /// Primary-output index the witness distinguishes (-1 when equivalent).
  int failing_output = -1;
};

/// Check combinational equivalence of two netlists with identical PI/PO
/// counts (paired by position). DFF outputs, if any, are paired by position
/// as free frame inputs (single-frame equivalence).
EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    std::int64_t conflict_limit = -1);

}  // namespace tz::sat
