// Combinational equivalence checking via SAT miters.
//
// Two roles in the TrojanZero flow:
//  * prove a salvaged circuit N' is NOT equivalent to N (Algorithm 1 removals
//    are real functional changes hidden from the defender's patterns) and
//    extract the distinguishing input vector;
//  * extract HT trigger witnesses: an input under which the infected circuit
//    N'' differs from N.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace tz::sat {

struct EquivalenceResult {
  bool equivalent = false;
  bool decided = true;  ///< false when the conflict limit was hit.
  /// When not equivalent: an input assignment (by PI index) exposing a
  /// differing primary output.
  std::vector<bool> counterexample;
};

/// Check combinational equivalence of two netlists with identical PI/PO
/// counts (paired by position). DFF outputs, if any, are paired by position
/// as free frame inputs (single-frame equivalence).
EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    std::int64_t conflict_limit = -1);

}  // namespace tz::sat
