// Compact CDCL SAT solver (MiniSat-style).
//
// Two-literal watching, first-UIP conflict learning, VSIDS-like activity
// with phase saving and geometric restarts. Used by the equivalence checker
// to prove that TrojanZero rewrites change functionality only off the
// defender's pattern set, and to extract HT trigger witnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace tz::sat {

using Var = std::int32_t;

/// Literal encoding: lit = 2*var (positive) or 2*var+1 (negated).
struct Lit {
  std::int32_t x = -2;

  static Lit make(Var v, bool neg = false) { return Lit{2 * v + (neg ? 1 : 0)}; }
  Var var() const { return x >> 1; }
  bool neg() const { return x & 1; }
  Lit operator~() const { return Lit{x ^ 1}; }
  bool operator==(const Lit&) const = default;
};

enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

enum class SolveResult : std::uint8_t { Sat, Unsat, Unknown };

class Solver {
 public:
  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Add a clause (returns false if the database is already unsatisfiable).
  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve under optional assumptions; conflict_limit < 0 means unlimited.
  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    std::int64_t conflict_limit = -1);

  /// Model access after Sat.
  bool model_value(Var v) const { return model_[v] == LBool::True; }

  std::int64_t conflicts() const { return conflicts_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0.0;
  };
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoClause = -1;

  LBool value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == LBool::Undef) return LBool::Undef;
    return (v == LBool::True) != l.neg() ? LBool::True : LBool::False;
  }

  void attach(ClauseRef cr);
  bool enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= 0.95; }
  void reduce_learnts();

  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;  // indexed by lit.x
  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<char> phase_;          // saved polarity per var
  std::vector<double> activity_;
  std::vector<ClauseRef> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;
  double var_inc_ = 1.0;
  bool ok_ = true;
  std::int64_t conflicts_ = 0;
  std::vector<char> seen_;
};

}  // namespace tz::sat
