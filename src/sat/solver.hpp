// Arena-based CDCL SAT solver (MiniSat/Glucose-class).
//
// The engine behind the incremental equivalence miter (sat/miter.hpp) and
// the SAT-exact trigger-rarity counter (sat/exact_pft.hpp):
//
//  - clauses live in a flat uint32 arena (sat/arena.hpp) with inline
//    size/learnt/LBD/activity headers — no per-clause heap allocation;
//  - two-watched-literal propagation with blocker literals, plus dedicated
//    binary watch lists that resolve binary implications without touching
//    the arena at all;
//  - VSIDS branching through an indexed order heap (sat/heap.hpp) with
//    phase saving and user-settable polarity hints (the miter seeds these
//    from BitSimulator traces);
//  - first-UIP learning with recursive (deep) clause minimization and
//    glue (LBD) computation;
//  - Luby restarts and glucose-style LBD-driven learnt-DB reduction that
//    runs at any decision level (locked reason clauses are skipped), so the
//    learnt DB stays bounded under assumption-heavy incremental use;
//  - MiniSat-style in-loop assumptions: assumption literals are placed as
//    decisions inside the search loop, so conflict analysis may backtrack
//    past them and unit learnts assert at level 0 and survive the solve.
//
// The reference seed core is preserved unchanged (modulo the duplicated
// unit-learnt branch) in sat/legacy_solver.hpp for same-run A/B benching.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sat/arena.hpp"
#include "sat/heap.hpp"
#include "sat/types.hpp"

namespace tz {
class SatChecker;
}

namespace tz::sat {

struct SatTestPeer;

class Solver {
 public:
  /// Lifetime counters. `conflicts`/`decisions`/`propagations` accumulate
  /// across solve() calls (conflicts() below is per-solve for API compat).
  struct Stats {
    std::int64_t conflicts = 0;
    std::int64_t decisions = 0;
    std::int64_t propagations = 0;
    std::int64_t restarts = 0;
    std::int64_t reduces = 0;          ///< learnt-DB reductions
    std::int64_t removed_learnts = 0;  ///< clauses dropped by reductions
    std::int64_t gc_runs = 0;          ///< arena garbage collections
    std::int64_t minimized_lits = 0;   ///< literals removed by minimization
  };

  /// A long-clause watcher: the watched clause plus a cached "blocker"
  /// literal from it. If the blocker is already true the clause is
  /// satisfied and the arena is never touched.
  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };
  /// A binary-clause watcher: the implied literal and the clause ref (the
  /// ref is only needed as a reason for conflict analysis — propagation
  /// itself never dereferences the arena for binaries).
  struct BinWatcher {
    Lit other;
    ClauseRef cref;
  };

  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Add a clause (returns false if the database is already unsatisfiable).
  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve under optional assumptions; conflict_limit < 0 means unlimited.
  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    std::int64_t conflict_limit = -1);

  /// Model access after Sat.
  bool model_value(Var v) const { return model_[v] == LBool::True; }

  /// Conflicts of the most recent solve() call (seed-API compat).
  std::int64_t conflicts() const { return conflicts_; }
  const Stats& stats() const { return stats_; }
  std::size_t num_clauses() const { return clauses_.size(); }
  std::size_t num_learnts() const { return learnts_.size(); }

  /// Polarity hint: the next decision on `v` tries `pol` first. The miter's
  /// BitSimulator pre-pass seeds these so search starts near a simulated
  /// trace instead of the all-false phase default.
  void set_phase(Var v, bool pol) { phase_[v] = pol ? 1 : 0; }

  /// Dump the problem clauses (not learnts) plus level-0 facts in DIMACS.
  void write_dimacs(std::ostream& os) const;

 private:
  friend class ::tz::SatChecker;
  friend struct SatTestPeer;

  LBool value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == LBool::Undef) return LBool::Undef;
    return (v == LBool::True) != l.neg() ? LBool::True : LBool::False;
  }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  bool locked(ClauseRef cr) const {
    const Lit c0 = arena_.lit(cr, 0);
    return reason_[c0.var()] == cr && value(c0) == LBool::True;
  }

  void attach(ClauseRef cr);
  void detach(ClauseRef cr);
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level,
               std::uint32_t& lbd);
  bool lit_redundant(Lit p, std::uint32_t abstract_levels);
  std::uint32_t compute_lbd(const std::vector<Lit>& lits);
  void cancel_until(int level);
  Lit pick_branch();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  void bump_var(Var v);
  void bump_clause(ClauseRef cr);
  void reduce_db();
  void check_garbage();
  static std::int64_t luby(std::int64_t i);

  ClauseArena arena_;
  std::vector<ClauseRef> clauses_;  ///< problem clauses (incl. binaries)
  std::vector<ClauseRef> learnts_;  ///< learnt clauses (incl. binaries)
  std::vector<std::vector<Watcher>> watches_;      // indexed by lit.x
  std::vector<std::vector<BinWatcher>> bin_watches_;  // indexed by lit.x
  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<char> phase_;  ///< saved / hinted polarity per var
  std::vector<double> activity_;
  std::vector<ClauseRef> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;
  VarOrderHeap order_{activity_};
  double var_inc_ = 1.0;
  float cla_inc_ = 1.0F;
  bool ok_ = true;
  std::int64_t conflicts_ = 0;  ///< conflicts of the current/last solve
  Stats stats_;
  std::size_t reduce_cap_ = 2000;  ///< learnt count that triggers reduce_db
  // analyze() scratch
  std::vector<char> seen_;
  std::vector<Lit> analyze_clear_;
  std::vector<Lit> analyze_stack_;
  std::vector<int> lbd_scratch_;
};

}  // namespace tz::sat
