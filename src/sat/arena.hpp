// Flat clause arena: every clause lives in one contiguous uint32_t buffer.
//
// Replaces the seed solver's std::vector<Clause> (one heap allocation and two
// pointer chases per clause) with offset-addressed storage:
//
//   word 0            header: (size << 2) | (reloc << 1) | learnt
//   word 1..2         learnt only: LBD, activity (float bit pattern)
//   word h..h+size-1  literals, stored as Lit::x
//
// A ClauseRef is the word offset of the header. Freeing only accounts the
// words as wasted; garbage_collect() copies the live clauses into a fresh
// arena (callers relocate their refs through reloc(), which installs a
// forward pointer in the old header so shared refs converge).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace tz::sat {

using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kNoClause = 0xFFFFFFFFU;

class ClauseArena {
 public:
  ClauseRef alloc(const std::vector<Lit>& lits, bool learnt) {
    const ClauseRef cr = static_cast<ClauseRef>(data_.size());
    data_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                    (learnt ? 1U : 0U));
    if (learnt) {
      data_.push_back(0);                            // LBD
      data_.push_back(std::bit_cast<std::uint32_t>(0.0F));  // activity
    }
    for (const Lit l : lits) data_.push_back(static_cast<std::uint32_t>(l.x));
    return cr;
  }

  std::uint32_t size(ClauseRef cr) const { return data_[cr] >> 2; }
  bool learnt(ClauseRef cr) const { return (data_[cr] & 1U) != 0; }
  bool relocated(ClauseRef cr) const { return (data_[cr] & 2U) != 0; }
  ClauseRef forward(ClauseRef cr) const { return data_[cr + 1]; }

  std::uint32_t header_words(ClauseRef cr) const { return learnt(cr) ? 3 : 1; }
  std::uint32_t words(ClauseRef cr) const {
    return header_words(cr) + size(cr);
  }

  Lit lit(ClauseRef cr, std::uint32_t i) const {
    return Lit{static_cast<std::int32_t>(data_[cr + header_words(cr) + i])};
  }
  void set_lit(ClauseRef cr, std::uint32_t i, Lit l) {
    data_[cr + header_words(cr) + i] = static_cast<std::uint32_t>(l.x);
  }
  /// Raw literal words (Lit::x values) — the propagation inner loop indexes
  /// these directly to skip the per-access header decode.
  std::uint32_t* raw_lits(ClauseRef cr) {
    return data_.data() + cr + header_words(cr);
  }
  const std::uint32_t* raw_lits(ClauseRef cr) const {
    return data_.data() + cr + header_words(cr);
  }

  /// Shrink a clause in place (strict-subsumption minimization); the freed
  /// tail words are accounted as wasted.
  void shrink(ClauseRef cr, std::uint32_t new_size) {
    const std::uint32_t old = size(cr);
    if (new_size >= old) return;
    wasted_ += old - new_size;
    data_[cr] = (new_size << 2) | (data_[cr] & 3U);
  }

  std::uint32_t lbd(ClauseRef cr) const { return data_[cr + 1]; }
  void set_lbd(ClauseRef cr, std::uint32_t g) { data_[cr + 1] = g; }
  float activity(ClauseRef cr) const {
    return std::bit_cast<float>(data_[cr + 2]);
  }
  void set_activity(ClauseRef cr, float a) {
    data_[cr + 2] = std::bit_cast<std::uint32_t>(a);
  }

  void free_clause(ClauseRef cr) { wasted_ += words(cr); }

  /// Relocate `cr` into `to`, installing a forward pointer in this arena so
  /// every alias of the ref lands on the same copy. `cr` is updated in place.
  void reloc(ClauseRef& cr, ClauseArena& to) {
    if (relocated(cr)) {
      cr = forward(cr);
      return;
    }
    const ClauseRef ncr = static_cast<ClauseRef>(to.data_.size());
    const std::uint32_t n = words(cr);
    to.data_.insert(to.data_.end(), data_.begin() + cr,
                    data_.begin() + cr + n);
    data_[cr] |= 2U;       // mark relocated; the old payload is now dead
    data_[cr + 1] = ncr;   // forward pointer (overwrites LBD / first literal)
    cr = ncr;
  }

  std::size_t size_words() const { return data_.size(); }
  std::size_t wasted_words() const { return wasted_; }
  void reserve(std::size_t words) { data_.reserve(words); }

 private:
  std::vector<std::uint32_t> data_;
  std::size_t wasted_ = 0;
};

}  // namespace tz::sat
