// Clang thread-safety-analysis capabilities for the concurrency layer.
//
// The macros expand to Clang's capability attributes when the compiler
// supports them (clang with -Wthread-safety) and to nothing elsewhere (GCC),
// so annotated code compiles identically everywhere while the Clang CI job
// statically proves the locking discipline: which members a mutex guards,
// which methods must (or must not) hold it, and which scopes acquire it.
//
// libstdc++'s std::mutex carries no capability annotations, so the analysis
// cannot see through std::lock_guard<std::mutex>. Mutex/MutexLock below wrap
// std::mutex/std::unique_lock with the attributes attached — use them instead
// of the std types wherever a member is TZ_GUARDED_BY a lock.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define TZ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TZ_THREAD_ANNOTATION(x)
#endif

/// Class is a lockable capability (mutexes, roles).
#define TZ_CAPABILITY(name) TZ_THREAD_ANNOTATION(capability(name))
/// Member may only be read/written while holding the given capability.
#define TZ_GUARDED_BY(mu) TZ_THREAD_ANNOTATION(guarded_by(mu))
/// Pointer/reference member: the pointee is guarded, not the pointer.
#define TZ_PT_GUARDED_BY(mu) TZ_THREAD_ANNOTATION(pt_guarded_by(mu))
/// Function requires the capability held on entry (and leaves it held).
#define TZ_REQUIRES(...) TZ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (not held on entry, held on exit).
#define TZ_ACQUIRE(...) TZ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not held on exit).
#define TZ_RELEASE(...) TZ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function must NOT hold the capability (deadlock guard).
#define TZ_EXCLUDES(...) TZ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// RAII type whose constructor acquires and destructor releases.
#define TZ_SCOPED_CAPABILITY TZ_THREAD_ANNOTATION(scoped_lockable)
/// Escape hatch; every use needs a justifying comment.
#define TZ_NO_THREAD_SAFETY_ANALYSIS \
  TZ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tz {

/// std::mutex with the capability attribute attached so TZ_GUARDED_BY
/// members are statically checked under -Wthread-safety.
class TZ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TZ_ACQUIRE() { m_.lock(); }
  void unlock() TZ_RELEASE() { m_.unlock(); }

  /// The wrapped mutex, for std::condition_variable interop (MutexLock::wait
  /// keeps the capability modelling while the wait runs).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// Scoped lock over Mutex, analysis-visible. Condition waits go through
/// wait(): the capability is modelled as held across the wait (the lock is
/// reacquired before wait() returns, so guarded reads after it are sound).
class TZ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TZ_ACQUIRE(mu) : lk_(mu.native()) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() TZ_RELEASE() {}

  /// Block on `cv` until notified. Callers loop on their predicate with the
  /// guarded state read under the lock (no lambda predicate — the analysis
  /// cannot see a lambda body holds the caller's lock).
  void wait(std::condition_variable& cv) { cv.wait(lk_); }

 private:
  std::unique_lock<std::mutex> lk_;
};

}  // namespace tz
