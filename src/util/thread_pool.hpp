// Small reusable thread pool for the embarrassingly-parallel candidate
// scans (FlowEngine insertion victim screening, salvage tie screening).
//
// Design constraints, in order:
//  - Determinism: parallel_for(n, fn) promises only that fn(i, worker) runs
//    exactly once for every i; callers write results into slot i of a
//    pre-sized vector and reduce in index order afterwards, so the outcome
//    never depends on scheduling. The pool itself has no ordered channels.
//  - Reuse: workers are spawned once and parked between jobs, so a flow that
//    issues one parallel_for per screening batch pays thread creation once.
//  - Caller participation: the calling thread works the same index stream as
//    the workers; a pool of size 1 (or n == 1) degrades to an inline loop
//    with no synchronisation at all.
//
// The locking discipline is annotated with util/thread_safety.hpp
// capabilities (job_ and stop_ are TZ_GUARDED_BY(m_)) and statically checked
// by Clang's -Wthread-safety in CI. Condition waits are written as explicit
// while-loops over MutexLock::wait — a predicate lambda's body is invisible
// to the analysis.
//
// Thread-count resolution: an explicit request wins; otherwise the TZ_THREADS
// environment variable; otherwise std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_safety.hpp"

namespace tz {

/// Threads to use for a flow phase: `requested` if nonzero, else TZ_THREADS
/// if set to a positive integer, else hardware_concurrency (min 1).
inline std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TZ_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

class ThreadPool {
 public:
  /// `threads` counts the calling thread: a pool of size N spawns N-1
  /// workers. 0 resolves via resolve_threads(0).
  explicit ThreadPool(std::size_t threads = 0) {
    const std::size_t n = std::max<std::size_t>(1, resolve_threads(threads));
    workers_.reserve(n - 1);
    for (std::size_t w = 1; w < n; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Total worker count including the caller.
  std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(i, worker) for every i in [0, n), blocking until all complete.
  /// `worker` is a stable id in [0, size()) — use it to index per-thread
  /// scratch. fn must be safe to call concurrently from different workers.
  /// The first exception thrown by any fn is rethrown here after the job
  /// drains; the remaining indices still run.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i, 0);
      return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    {
      MutexLock lk(m_);
      job_ = job;
    }
    cv_.notify_all();
    run_job(*job, 0);
    {
      MutexLock lk(m_);
      while (job->done.load() != job->n) lk.wait(cv_);
      if (job_ == job) job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;  ///< First failure; guarded by the pool mutex.
  };

  void run_job(Job& job, std::size_t worker) {
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) return;
      try {
        (*job.fn)(i, worker);
      } catch (...) {
        MutexLock lk(m_);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
        // Last index: wake the caller (and any parked workers re-checking).
        MutexLock lk(m_);
        cv_.notify_all();
      }
    }
  }

  void worker_loop(std::size_t worker) {
    std::shared_ptr<Job> last;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lk(m_);
        while (!stop_ && (job_ == nullptr || job_ == last)) lk.wait(cv_);
        if (stop_) return;
        job = job_;
      }
      run_job(*job, worker);
      last = std::move(job);  // a drained job hands out only i >= n: harmless
    }
  }

  std::vector<std::thread> workers_;
  Mutex m_;
  std::condition_variable cv_;
  /// Current (or most recent) job handed to the workers.
  std::shared_ptr<Job> job_ TZ_GUARDED_BY(m_);
  bool stop_ TZ_GUARDED_BY(m_) = false;
};

}  // namespace tz
