// Small reusable thread pool for the embarrassingly-parallel candidate
// scans (FlowEngine insertion victim screening, salvage tie screening).
//
// Design constraints, in order:
//  - Determinism: parallel_for(n, fn) promises only that fn(i, worker) runs
//    exactly once for every i; callers write results into slot i of a
//    pre-sized vector and reduce in index order afterwards, so the outcome
//    never depends on scheduling. The pool itself has no ordered channels.
//  - Reuse: workers are spawned once and parked between jobs, so a flow that
//    issues one parallel_for per screening batch pays thread creation once.
//  - Caller participation: the calling thread works the same index stream as
//    the workers; a pool of size 1 (or n == 1) degrades to an inline loop
//    with no synchronisation at all.
//
// The locking discipline is annotated with util/thread_safety.hpp
// capabilities (job_ and stop_ are TZ_GUARDED_BY(m_)) and statically checked
// by Clang's -Wthread-safety in CI. Condition waits are written as explicit
// while-loops over MutexLock::wait — a predicate lambda's body is invisible
// to the analysis.
//
// Thread-count resolution: an explicit request wins; otherwise the TZ_THREADS
// environment variable; otherwise the *effective* CPU count — the minimum of
// hardware_concurrency, the process affinity mask, and the container's
// cgroup CPU quota. hardware_concurrency() alone reports the host's core
// count even inside a CPU-limited container (cgroup v2 `cpu.max`), which
// made the default oversubscribe badly in the bench container.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "util/thread_safety.hpp"

namespace tz {

namespace detail {

/// Parse one cgroup CPU bandwidth limit into a whole-CPU ceiling.
/// cgroup v2 `cpu.max` is "<quota> <period>" where quota is "max" (no limit)
/// or microseconds per period; cgroup v1 splits the same two numbers across
/// cpu.cfs_quota_us (-1 = no limit) and cpu.cfs_period_us. Returns
/// ceil(quota/period) clamped to >= 1, or 0 when the text describes no
/// limit / is malformed (caller ignores the source).
inline std::size_t parse_cpu_quota(std::string_view quota,
                                   std::string_view period) {
  auto parse_ll = [](std::string_view s, long long& out) {
    char buf[32];
    const std::size_t n = s.copy(buf, sizeof buf - 1);
    buf[n] = '\0';
    char* end = nullptr;
    out = std::strtoll(buf, &end, 10);
    return end != buf;
  };
  // Trim trailing newline/space the kernel files carry.
  auto trim = [](std::string_view s) {
    while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) {
      s.remove_suffix(1);
    }
    return s;
  };
  quota = trim(quota);
  period = trim(period);
  if (quota.empty() || quota == "max") return 0;
  long long q = 0, p = 0;
  if (!parse_ll(quota, q) || !parse_ll(period, p)) return 0;
  if (q <= 0 || p <= 0) return 0;  // -1 quota = unlimited (v1)
  return static_cast<std::size_t>((q + p - 1) / p);
}

/// Split a `cpu.max`-style "<quota> <period>" line into the two fields and
/// delegate to parse_cpu_quota. 0 = no limit.
inline std::size_t parse_cpu_max_line(std::string_view line) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return 0;
  return parse_cpu_quota(line.substr(0, sp), line.substr(sp + 1));
}

inline bool read_small_file(const char* path, char* buf, std::size_t cap,
                            std::string_view& out) {
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return false;
  const std::size_t n = std::fread(buf, 1, cap - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  out = std::string_view(buf, n);
  return n > 0;
}

}  // namespace detail

/// CPUs this process may actually use: the minimum of
/// std::thread::hardware_concurrency(), the sched_getaffinity mask, and the
/// cgroup v2/v1 CPU quota (ceil(quota/period)). Cached after the first call
/// (the limits are fixed for the life of a container). Always >= 1.
inline std::size_t effective_cpu_count() {
  static const std::size_t cached = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    std::size_t n = hw > 0 ? hw : 1;
#if defined(__linux__)
    cpu_set_t mask;
    CPU_ZERO(&mask);
    if (sched_getaffinity(0, sizeof mask, &mask) == 0) {
      const int c = CPU_COUNT(&mask);
      if (c > 0 && static_cast<std::size_t>(c) < n) {
        n = static_cast<std::size_t>(c);
      }
    }
    char buf[64];
    char buf2[64];
    std::string_view text, text2;
    // cgroup v2 unified hierarchy.
    if (detail::read_small_file("/sys/fs/cgroup/cpu.max", buf, sizeof buf,
                                text)) {
      const std::size_t q = detail::parse_cpu_max_line(text);
      if (q > 0 && q < n) n = q;
    } else if (detail::read_small_file("/sys/fs/cgroup/cpu/cpu.cfs_quota_us",
                                       buf, sizeof buf, text) &&
               detail::read_small_file("/sys/fs/cgroup/cpu/cpu.cfs_period_us",
                                       buf2, sizeof buf2, text2)) {
      const std::size_t q = detail::parse_cpu_quota(text, text2);
      if (q > 0 && q < n) n = q;
    }
#endif
    return n > 0 ? n : std::size_t{1};
  }();
  return cached;
}

/// Threads to use for a flow phase: `requested` if nonzero, else TZ_THREADS
/// if set to a positive integer, else the effective CPU count (container
/// quota / affinity aware, min 1).
inline std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TZ_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  return effective_cpu_count();
}

class ThreadPool {
 public:
  /// `threads` counts the calling thread: a pool of size N spawns N-1
  /// workers. 0 resolves via resolve_threads(0).
  explicit ThreadPool(std::size_t threads = 0) {
    const std::size_t n = std::max<std::size_t>(1, resolve_threads(threads));
    workers_.reserve(n - 1);
    for (std::size_t w = 1; w < n; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Total worker count including the caller.
  std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(i, worker) for every i in [0, n), blocking until all complete.
  /// `worker` is a stable id in [0, size()) — use it to index per-thread
  /// scratch. fn must be safe to call concurrently from different workers.
  /// The first exception thrown by any fn is rethrown here after the job
  /// drains; the remaining indices still run.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i, 0);
      return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    {
      MutexLock lk(m_);
      job_ = job;
    }
    cv_.notify_all();
    run_job(*job, 0);
    {
      MutexLock lk(m_);
      while (job->done.load() != job->n) lk.wait(cv_);
      if (job_ == job) job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;  ///< First failure; guarded by the pool mutex.
  };

  void run_job(Job& job, std::size_t worker) {
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) return;
      try {
        (*job.fn)(i, worker);
      } catch (...) {
        MutexLock lk(m_);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
        // Last index: wake the caller (and any parked workers re-checking).
        MutexLock lk(m_);
        cv_.notify_all();
      }
    }
  }

  void worker_loop(std::size_t worker) {
    std::shared_ptr<Job> last;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lk(m_);
        while (!stop_ && (job_ == nullptr || job_ == last)) lk.wait(cv_);
        if (stop_) return;
        job = job_;
      }
      run_job(*job, worker);
      last = std::move(job);  // a drained job hands out only i >= n: harmless
    }
  }

  std::vector<std::thread> workers_;
  Mutex m_;
  std::condition_variable cv_;
  /// Current (or most recent) job handed to the workers.
  std::shared_ptr<Job> job_ TZ_GUARDED_BY(m_);
  bool stop_ TZ_GUARDED_BY(m_) = false;
};

}  // namespace tz
