// Debug-only bounds assertions for the hot accessors.
//
// TZ_DBG_ASSERT guards the index arithmetic that the hot paths otherwise
// trust callers to get right (NodeValues row/segment/bit, PatternSet
// indexing, EvalPlan CSR iteration). In Debug and sanitizer builds a bad
// index aborts at the accessor with the failed expression; in Release
// (NDEBUG) the macro compiles out entirely, so the checked-in bench rows are
// unaffected (spot-checked same-run A/B — see README).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tz::detail {

[[noreturn]] inline void dbg_assert_fail(const char* expr, const char* msg,
                                         const char* file, int line) {
  std::fprintf(stderr, "TZ_DBG_ASSERT failed: %s (%s) at %s:%d\n", expr, msg,
               file, line);
  std::abort();
}

}  // namespace tz::detail

#if defined(NDEBUG)
#define TZ_DBG_ASSERT(cond, msg) ((void)0)
#else
#define TZ_DBG_ASSERT(cond, msg)                                       \
  ((cond) ? (void)0                                                    \
          : ::tz::detail::dbg_assert_fail(#cond, msg, __FILE__, __LINE__))
#endif
