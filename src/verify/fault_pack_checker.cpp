// FaultPackChecker — packing invariants of the word-packed fault simulator.
//
// The packed engine (atpg/fault_sim_packed.hpp) forces stuck values by
// blending per-slot lane masks into the SoA sweep between ranged kernel
// calls. The correctness of a whole 64-fault batch rests on the mask
// bookkeeping built before the sweep; this checker validates that snapshot
// (FaultPackBatch) without touching the value matrix:
//
//  - PackSiteSlot: every live lane's fault node maps to a valid, evaluable
//    plan slot; the site list is strictly ascending (the sweep splits at
//    sites in slot order) and its masks represent each lane at exactly the
//    lane's own site with the right stuck polarity.
//  - PackLaneBleed: forcing masks are pairwise disjoint and confined to
//    lanes_mask. Kernel opcodes are lane-wise, so mask disjointness is
//    precisely the no-cross-fault-bleed guarantee, and keeping padding lanes
//    unforced is what lets them carry the good machine.
//  - PackLaneBijection: the live lanes are dense low bits, one per undropped
//    caller fault, no fault appearing in two lanes — the drop-list <->
//    live-lane bijection fault dropping relies on.
#include <algorithm>
#include <string>

#include "verify/verify.hpp"

namespace tz {

namespace {

std::uint64_t lane_bit(std::size_t lane) { return std::uint64_t{1} << lane; }

}  // namespace

VerifyReport FaultPackChecker::run(const FaultPackBatch& b) {
  VerifyReport r;
  if (b.plan == nullptr) {
    r.add(CheckId::PackSiteSlot, "batch has no plan");
    return r;
  }
  const EvalPlan& plan = *b.plan;
  const std::size_t lanes = b.lane_node.size();

  // -- PackLaneBijection: dense low live lanes, one undropped fault each.
  const std::uint64_t want_mask =
      lanes >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
  if (lanes > 64 || b.lanes_mask != want_mask) {
    r.add(CheckId::PackLaneBijection,
          "lanes_mask does not cover the " + std::to_string(lanes) +
              " batch lanes as dense low bits");
  }
  if (b.lane_fault.size() != lanes) {
    r.add(CheckId::PackLaneBijection,
          "lane_fault size " + std::to_string(b.lane_fault.size()) +
              " != lane count " + std::to_string(lanes));
  } else {
    std::vector<std::size_t> sorted(b.lane_fault.begin(), b.lane_fault.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      r.add(CheckId::PackLaneBijection,
            "a fault index occupies more than one lane");
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t f = b.lane_fault[lane];
      if (f < b.dropped.size() && b.dropped[f]) {
        r.add(CheckId::PackLaneBijection,
              "lane " + std::to_string(lane) + " simulates fault " +
                  std::to_string(f) + " which is already dropped");
      }
    }
  }
  if ((b.sa1_lanes & ~b.lanes_mask) != 0) {
    r.add(CheckId::PackLaneBijection, "sa1_lanes marks non-live lanes");
  }

  // -- PackSiteSlot: site list sorted/valid, masks agree with lane faults.
  if (b.site_mask.size() != b.site_slot.size() ||
      b.site_force_one.size() != b.site_slot.size()) {
    r.add(CheckId::PackSiteSlot, "site mask arrays not parallel to site_slot");
    return r;
  }
  for (std::size_t i = 0; i < b.site_slot.size(); ++i) {
    const SlotId s = b.site_slot[i];
    if (s >= plan.num_slots()) {
      r.add(CheckId::PackSiteSlot,
            "site slot out of range: " + std::to_string(s), kNoNode, s);
      return r;
    }
    if (plan.op(s) == EvalOp::Dead) {
      r.add(CheckId::PackSiteSlot, "site slot is a dead tombstone", kNoNode,
            s);
    }
    if (i > 0 && b.site_slot[i - 1] >= s) {
      r.add(CheckId::PackSiteSlot,
            "site slots not strictly ascending at index " + std::to_string(i),
            kNoNode, s);
    }
    if ((b.site_force_one[i] & ~b.site_mask[i]) != 0) {
      r.add(CheckId::PackSiteSlot,
            "site forces a one outside its own mask", kNoNode, s);
    }
  }
  // Each lane must be forced at exactly its fault's slot, nowhere else, with
  // the stuck-at polarity recorded in sa1_lanes.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const NodeId node = b.lane_node[lane];
    const SlotId want = plan.slot_of(node);
    if (want == kNoSlot) {
      r.add(CheckId::PackSiteSlot,
            "lane " + std::to_string(lane) + " fault node has no plan slot",
            node);
      continue;
    }
    const std::uint64_t bit = lane_bit(lane);
    bool found = false;
    for (std::size_t i = 0; i < b.site_slot.size(); ++i) {
      if ((b.site_mask[i] & bit) == 0) continue;
      if (found || b.site_slot[i] != want) {
        r.add(CheckId::PackSiteSlot,
              "lane " + std::to_string(lane) +
                  " forced at a slot that is not its fault site",
              node, b.site_slot[i]);
      }
      const bool sa1 = (b.sa1_lanes & bit) != 0;
      if (((b.site_force_one[i] & bit) != 0) != sa1) {
        r.add(CheckId::PackSiteSlot,
              "lane " + std::to_string(lane) + " stuck polarity mismatch",
              node, b.site_slot[i]);
      }
      found = true;
    }
    if (!found) {
      r.add(CheckId::PackSiteSlot,
            "lane " + std::to_string(lane) + " is never forced", node, want);
    }
  }

  // -- PackLaneBleed: masks pairwise disjoint, no forcing outside live lanes.
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < b.site_slot.size(); ++i) {
    const std::uint64_t m = b.site_mask[i];
    if ((m & ~b.lanes_mask) != 0) {
      r.add(CheckId::PackLaneBleed,
            "site mask forces padding lanes (good machine would be lost)",
            kNoNode, b.site_slot[i]);
    }
    if ((m & seen) != 0) {
      r.add(CheckId::PackLaneBleed,
            "site mask overlaps another site's lanes (cross-fault bleed)",
            kNoNode, b.site_slot[i]);
    }
    seen |= m;
  }
  return r;
}

}  // namespace tz
