// tz::verify — static invariant checkers for Netlist and EvalPlan.
//
// After PRs 3-6 every flow commit goes through subtle in-place machinery
// (TieUndo cone resurrection, added-range rollback, SuiteOracle's
// resync_structure CSR rewrites and slot tombstoning) whose invariants were
// enforced by nothing but end-to-end bit-identity tests. The two checkers
// here are cheap O(V+E) sweeps that catch a corrupted netlist or plan at the
// mutation that caused it, not three engines later:
//
//  - NetlistChecker validates structural sanity of a Netlist: every fanin
//    refers to a live node, the name index matches the live nodes, PI/PO/DFF
//    lists are consistent with node roles, gate arity is legal for its
//    GateType, the combinational logic is acyclic (topo sweep, DFF edges
//    cut), fanin/fanout sets are mutually consistent, and no live gate is
//    left orphaned outside a declared sweep.
//
//  - PlanChecker validates a compiled EvalPlan against its source netlist:
//    live-slot <-> live-node bijection (tombstones excluded), opcode/arity
//    agreement with the gate, CSR fanin/fanout bounds and mutual
//    consistency, slot order respecting topological ranks, stripe/block
//    layout bookkeeping, and a structural-equivalence diff proving a patched
//    plan (after SuiteOracle::resync_structure) is isomorphic to a fresh
//    recompile.
//
// Both return a typed list of violations (check id, node/slot, message)
// rather than asserting, so tests can assert emptiness and tools can print
// reports. FlowEngine runs them after each commit and each rollback under
// the TZ_CHECK gate (default on in Debug builds, off in Release hot paths);
// tools/tz_check lints any .bench file or generator spec from the CLI.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/eval_plan.hpp"

namespace tz {

class NodeValues;

/// Every named invariant the checkers enforce. The kebab-case string form
/// (to_string) is the stable id printed in reports and asserted by the
/// corrupt-input tests — one test per id.
enum class CheckId : std::uint8_t {
  // NetlistChecker
  NetDanglingFanin,   ///< A live node's fanin is out of range or dead.
  NetDuplicateName,   ///< Name index out of sync: duplicate / missing / stale.
  NetBadArity,        ///< Fanin count illegal for the node's GateType.
  NetInputList,       ///< inputs() inconsistent with live Input nodes.
  NetOutputList,      ///< outputs() entry dead, duplicated, or invalid.
  NetDffList,         ///< dffs() inconsistent with live Dff nodes.
  NetFanoutSync,      ///< A fanin edge is missing from the source's fanout.
  NetPhantomFanout,   ///< A fanout entry whose target does not read the node.
  NetCycle,           ///< Combinational cycle (DFF edges cut).
  NetOrphan,          ///< Live combinational gate with no readers, not a PO.
  NetLiveCount,       ///< live_count() drifted from the actual live nodes.
  // PlanChecker
  PlanSlotBijection,  ///< Live node <-> live slot mapping broken (tombstones).
  PlanOpcode,         ///< Slot opcode/arity disagrees with the node's gate.
  PlanCsrBounds,      ///< CSR offsets non-monotonic or slot ids out of range.
  PlanCsrStale,       ///< Fanin CSR entry disagrees with the netlist fanin.
  PlanFanoutSync,     ///< Fanin/fanout CSR mutual consistency broken.
  PlanTopoOrder,      ///< A fanin slot does not precede its reader.
  PlanIoLists,        ///< input/dff/output slot lists out of sync.
  PlanBlockLayout,    ///< block_words()/stripe bookkeeping contract broken.
  PlanEquivalence,    ///< Patched plan not isomorphic to a fresh recompile.
  // FaultPackChecker
  PackSiteSlot,       ///< Injection site/mask disagrees with the fault lane.
  PackLaneBleed,      ///< Forcing masks overlap or touch non-live lanes.
  PackLaneBijection,  ///< Live lanes <-> undropped faults not a bijection.
  // CampaignChecker
  CampPartition,      ///< Job->shard assignment is not a partition.
  CampShardRows,      ///< A shard checkpoint file is not append-consistent.
  CampMergeDuplicate, ///< Merged artifact carries a job id more than once.
  CampMergeMissing,   ///< Merged artifact is missing an expanded job id.
  // SatChecker
  SatArenaBounds,     ///< Clause ref/header out of arena bounds or relocated.
  SatWatchBijection,  ///< Long clause <-> watcher lists not a 2:1 bijection.
  SatBinaryWatch,     ///< Binary watch entry inconsistent with its clause.
};

/// Stable kebab-case id, e.g. "net-dangling-fanin".
std::string_view to_string(CheckId id);

/// One invariant violation. `node`/`slot` are kNoNode/kNoSlot when the
/// violation is not tied to a specific node or slot.
struct Violation {
  CheckId id;
  NodeId node = kNoNode;
  SlotId slot = kNoSlot;
  std::string message;
};

/// Checker result: a (possibly empty) violation list plus formatting.
struct VerifyReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::size_t count(CheckId id) const;
  bool has(CheckId id) const { return count(id) > 0; }

  void add(CheckId id, std::string message, NodeId node = kNoNode,
           SlotId slot = kNoSlot);
  void merge(VerifyReport other);

  /// Multi-line human-readable report ("<check-id> [node/slot] message").
  std::string format() const;

  /// Structured JSON report: {"ok": bool, "violations": [{"check": "<id>",
  /// "node": n|null, "slot": s|null, "message": "..."}]}. Check ids are the
  /// stable kebab-case strings, so CI and external tooling can diff findings
  /// across runs (tools/tz_check --json).
  std::string to_json() const;
};

struct NetlistCheckOptions {
  /// Accept live combinational gates whose output is unread (skip NetOrphan).
  /// The flows legitimately hold such gates mid-surgery (dummy balancing
  /// gates are unread by design), so FlowEngine's boundary checks allow
  /// them; the tz_check lint is strict by default.
  bool allow_unread_gates = false;
};

/// Structural sanity checker for a Netlist. O(V+E); never mutates, never
/// throws on corrupt input — every finding lands in the report.
class NetlistChecker {
 public:
  static VerifyReport run(const Netlist& nl,
                          const NetlistCheckOptions& opt = {});
};

struct PlanCheckOptions {
  /// Also diff against a freshly recompiled plan (adds one O(V+E) compile).
  bool equivalence = true;
};

/// Validates a compiled (possibly incrementally patched) EvalPlan against
/// its source netlist. Assumes nothing about the plan being well-formed:
/// CSR bounds are validated before any edge is dereferenced.
class PlanChecker {
 public:
  static VerifyReport run(const EvalPlan& plan, const Netlist& nl,
                          const PlanCheckOptions& opt = {});
};

/// A snapshot of one packed fault-simulation batch
/// (atpg/fault_sim_packed.hpp): up to 64 fault machines share one word, lane
/// i of the batch simulating the i-th live (undropped) fault. The packed
/// engine builds this view right before sweeping a batch; FaultPackChecker
/// validates it under TZ_CHECK. Spans alias the engine's batch scratch and
/// are only valid while the batch is in flight.
struct FaultPackBatch {
  const EvalPlan* plan = nullptr;
  std::uint64_t lanes_mask = 0;  ///< live lanes (dense low bits)
  std::uint64_t sa1_lanes = 0;   ///< lanes whose fault is stuck-at-1
  std::span<const NodeId> lane_node;        ///< per lane: fault site node
  std::span<const std::size_t> lane_fault;  ///< per lane: caller fault index
  std::span<const SlotId> site_slot;        ///< ascending unique site slots
  std::span<const std::uint64_t> site_mask;      ///< per site: forced lanes
  std::span<const std::uint64_t> site_force_one; ///< per site: stuck-at-1 lanes
  /// Caller detection flags at batch-build time (empty when the caller does
  /// not drop faults); indexed by lane_fault entries.
  std::span<const char> dropped;
};

/// Validates a packed fault-simulation batch against its plan: every lane's
/// site slot and stuck value is represented by exactly one mask bit at the
/// right slot (PackSiteSlot), forcing masks are pairwise disjoint and
/// confined to live lanes so fault machines cannot bleed into each other or
/// into the good-machine padding lanes (PackLaneBleed), and the live lanes
/// are a bijection with the undropped faults handed in by the caller
/// (PackLaneBijection).
class FaultPackChecker {
 public:
  static VerifyReport run(const FaultPackBatch& batch);
};

/// A structural snapshot of one campaign's scheduling state
/// (campaign/driver.hpp): the canonical job expansion, the deterministic
/// job->shard assignment, what each shard's JSONL checkpoint file actually
/// contains, and (optionally) the merged artifact's row ids. Plain strings
/// and indices only — the checker stays independent of the campaign types,
/// mirroring FaultPackBatch. Spans alias the driver's buffers and are valid
/// only for the duration of the run() call.
struct CampaignView {
  std::size_t num_shards = 0;
  /// Canonical job ids, grid-expansion order (the merge order).
  std::span<const std::string> job_ids;
  /// Parallel to job_ids: the shard each job was assigned to.
  std::span<const std::size_t> job_shard;
  /// Per shard: row ids in checkpoint-file order. An empty string marks a
  /// row that failed to parse (the driver's torn-tail sentinel).
  std::span<const std::vector<std::string>> shard_rows;
  /// Merged artifact row ids in artifact order; checked only when
  /// check_merged is set (a running campaign has no merged artifact yet).
  std::span<const std::string> merged_ids;
  bool check_merged = false;
};

/// Validates campaign scheduling invariants: the job->shard assignment is a
/// partition of the expanded grid (CampPartition), every shard checkpoint
/// row parses, belongs to that shard and appears exactly once across all
/// shards (CampShardRows), and the merged artifact carries every expanded
/// job id exactly once (CampMergeDuplicate / CampMergeMissing).
class CampaignChecker {
 public:
  static VerifyReport run(const CampaignView& view);
};

namespace sat {
class Solver;
}  // namespace sat

/// Validates the arena SAT solver's clause storage against its watch
/// structures (sat/solver.hpp): every registered clause ref points at an
/// in-bounds, non-relocated arena header whose literals name real variables
/// (SatArenaBounds); every long clause is watched exactly once on each of
/// its first two literals and no watcher points at an unregistered clause
/// (SatWatchBijection); and every binary clause appears in exactly the two
/// binary watch lists that imply its other literal (SatBinaryWatch). The
/// incremental miter runs this at check() boundaries under TZ_CHECK.
class SatChecker {
 public:
  static VerifyReport run(const sat::Solver& solver);
};

/// Validates a NodeValues matrix's layout bookkeeping against its plan
/// (stripe width, row count, contiguous/striped mode) — the ValueLayout leg
/// of the PlanBlockLayout contract.
VerifyReport check_values_layout(const NodeValues& vals);

/// Thrown by the flow-boundary checks when a checker finds violations.
/// what() carries the formatted report; callers that print diagnostics
/// (run_trojanzero_flow, the examples) write report().format() to stderr
/// before aborting, so a corrupted structure is named at the mutation that
/// caused it instead of surfacing as a bit-mismatch deep inside an engine.
class VerifyError : public std::runtime_error {
 public:
  VerifyError(std::string phase, VerifyReport report);

  const std::string& phase() const { return phase_; }
  const VerifyReport& report() const { return report_; }

 private:
  std::string phase_;
  VerifyReport report_;
};

/// The TZ_CHECK gate: explicit TZ_CHECK=1/0 wins; unset defaults to on in
/// Debug builds (!NDEBUG) and off in Release hot paths.
bool check_enabled();
/// Test/bench hook: 0 = force off, 1 = force on, -1 = back to the env var.
void set_check_enabled(int mode);

/// Run NetlistChecker (and PlanChecker when `plan` is non-null) and throw
/// VerifyError tagged with `phase` on any violation. The FlowEngine boundary
/// hook; callers gate on check_enabled().
void verify_or_throw(const Netlist& nl, const EvalPlan* plan,
                     std::string_view phase,
                     const NetlistCheckOptions& nopt = {},
                     const PlanCheckOptions& popt = {});

}  // namespace tz
