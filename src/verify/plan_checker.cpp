// PlanChecker: validates a compiled (and possibly incrementally patched)
// EvalPlan against its source netlist.
//
// The ordering matters: CSR bounds are proven first, and every later sweep
// that walks CSR edges is gated on that proof, so a corrupt offset array is
// reported instead of dereferenced. Patched plans are legal inputs — the
// checks encode exactly the shapes SuiteOracle::resync_structure produces:
//
//  - tie cells appended after compilation are EvalOp::Source slots with no
//    fanin/fanout CSR rows, placed after their readers (so the topo rule is
//    "fanin precedes reader OR fanin is a source");
//  - swept-cone slots are EvalOp::Dead: excluded from the node<->slot
//    bijection and from mutual-consistency sweeps, but their (stale) CSR
//    rows must still be in bounds;
//  - the equivalence diff canonicalises a Source slot of a const-typed node
//    to Const0/Const1, which is what a fresh recompile emits for it.
#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/simulator.hpp"
#include "verify/verify.hpp"

namespace tz {

namespace {

std::string node_label(const Netlist& nl, NodeId id) {
  if (id >= nl.raw_size()) return "<out-of-range>";
  return "'" + nl.node(id).name + "'";
}

bool is_dead_slot(const EvalPlan& p, SlotId s) {
  return p.op(s) == EvalOp::Dead;
}

/// The opcode compile() emits for a gate of this type/arity. Appended tie
/// cells legally carry Source instead of Const0/Const1 (canonicalised in the
/// equivalence diff); callers accept either.
EvalOp expected_op(GateType t, std::size_t arity) {
  switch (t) {
    case GateType::Input:
    case GateType::Dff: return EvalOp::Source;
    case GateType::Const0: return EvalOp::Const0;
    case GateType::Const1: return EvalOp::Const1;
    case GateType::Buf: return EvalOp::Buf;
    case GateType::Not: return EvalOp::Not;
    case GateType::Mux: return EvalOp::Mux;
    case GateType::And: return arity == 2 ? EvalOp::And2 : EvalOp::AndN;
    case GateType::Nand: return arity == 2 ? EvalOp::Nand2 : EvalOp::NandN;
    case GateType::Or: return arity == 2 ? EvalOp::Or2 : EvalOp::OrN;
    case GateType::Nor: return arity == 2 ? EvalOp::Nor2 : EvalOp::NorN;
    case GateType::Xor: return arity == 2 ? EvalOp::Xor2 : EvalOp::XorN;
    case GateType::Xnor: return arity == 2 ? EvalOp::Xnor2 : EvalOp::XnorN;
  }
  return EvalOp::Dead;
}

/// True when the slot is evaluated through its fanin CSR row (everything
/// except sources, constants and tombstones).
bool has_fanin_row(EvalOp op) {
  return op != EvalOp::Source && op != EvalOp::Const0 &&
         op != EvalOp::Const1 && op != EvalOp::Dead;
}

/// Bounds proof for one CSR (offsets monotonic, sized num_slots+1, closing
/// at the slots array size, every edge target a valid slot id). Returns
/// false when the arrays cannot be safely dereferenced.
bool check_csr(std::size_t n, VerifyReport& r, const char* what,
               const std::vector<std::uint32_t>& offset,
               const std::vector<SlotId>& slots) {
  if (offset.size() != n + 1) {
    r.add(CheckId::PlanCsrBounds,
          std::string(what) + " offset array has " +
              std::to_string(offset.size()) + " entries for " +
              std::to_string(n) + " slots");
    return false;
  }
  bool ok = true;
  for (std::size_t s = 0; s < n; ++s) {
    if (offset[s] > offset[s + 1]) {
      r.add(CheckId::PlanCsrBounds,
            std::string(what) + " offsets decrease at slot " +
                std::to_string(s),
            kNoNode, static_cast<SlotId>(s));
      ok = false;
    }
  }
  if (offset[n] != slots.size()) {
    r.add(CheckId::PlanCsrBounds,
          std::string(what) + " offsets close at " +
              std::to_string(offset[n]) + " but the edge array has " +
              std::to_string(slots.size()) + " entries");
    ok = false;
  }
  for (std::size_t k = 0; k < slots.size(); ++k) {
    if (slots[k] >= n) {
      r.add(CheckId::PlanCsrBounds,
            std::string(what) + " edge " + std::to_string(k) +
                " targets invalid slot " + std::to_string(slots[k]));
      ok = false;
    }
  }
  return ok;
}

void check_bijection(const EvalPlan& p, const Netlist& nl, VerifyReport& r) {
  const std::size_t n = p.num_slots();
  // Live node -> live slot.
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const SlotId s = p.slot_of(id);
    if (s == kNoSlot || s >= n) {
      r.add(CheckId::PlanSlotBijection,
            "live node " + node_label(nl, id) + " has no plan slot", id);
      continue;
    }
    if (p.node_of(s) != id) {
      r.add(CheckId::PlanSlotBijection,
            "slot_of(" + node_label(nl, id) + ") = " + std::to_string(s) +
                " but node_of maps that slot to node " +
                std::to_string(p.node_of(s)),
            id, s);
    } else if (is_dead_slot(p, s)) {
      r.add(CheckId::PlanSlotBijection,
            "live node " + node_label(nl, id) + " maps to tombstoned slot",
            id, s);
    }
  }
  // Live slot -> live node.
  for (SlotId s = 0; s < n; ++s) {
    if (is_dead_slot(p, s)) continue;
    const NodeId id = p.node_of(s);
    if (!nl.is_alive(id)) {
      r.add(CheckId::PlanSlotBijection,
            "live slot maps to dead/invalid node " + std::to_string(id) +
                " (missing tombstone)",
            id < nl.raw_size() ? id : kNoNode, s);
    } else if (p.slot_of(id) != s) {
      r.add(CheckId::PlanSlotBijection,
            "node_of maps slot to " + node_label(nl, id) +
                " but slot_of points elsewhere (duplicate slot)",
            id, s);
    }
  }
}

void check_opcodes(const EvalPlan& p, const Netlist& nl, VerifyReport& r,
                   bool csr_ok) {
  for (SlotId s = 0; s < p.num_slots(); ++s) {
    if (is_dead_slot(p, s)) continue;
    const NodeId id = p.node_of(s);
    if (!nl.is_alive(id)) continue;  // reported by check_bijection
    const Node& node = nl.node(id);
    const EvalOp want = expected_op(node.type, node.fanin.size());
    const EvalOp got = p.op(s);
    // Appended tie cells keep EvalOp::Source; a fresh compile emits ConstX.
    const bool tie_as_source = got == EvalOp::Source && is_const(node.type);
    if (got != want && !tie_as_source) {
      r.add(CheckId::PlanOpcode,
            "slot for " + node_label(nl, id) + " (" +
                std::string(to_string(node.type)) + "/" +
                std::to_string(node.fanin.size()) + " fanins) has opcode " +
                std::to_string(static_cast<int>(got)),
            id, s);
    }
    if (!csr_ok) continue;
    const std::size_t row = p.fanins(s).size();
    const std::size_t want_row = has_fanin_row(got) ? node.fanin.size() : 0;
    if (row != want_row) {
      r.add(CheckId::PlanOpcode,
            "slot for " + node_label(nl, id) + " has a " +
                std::to_string(row) + "-entry fanin row, expected " +
                std::to_string(want_row),
            id, s);
    }
  }
}

void check_edges(const EvalPlan& p, const Netlist& nl, VerifyReport& r) {
  const std::size_t n = p.num_slots();
  for (SlotId s = 0; s < n; ++s) {
    if (is_dead_slot(p, s) || !has_fanin_row(p.op(s))) continue;
    const NodeId id = p.node_of(s);
    if (!nl.is_alive(id)) continue;  // reported by check_bijection
    const Node& node = nl.node(id);
    const auto fanins = p.fanins(s);
    if (fanins.size() != node.fanin.size()) continue;  // PlanOpcode reported
    for (std::size_t k = 0; k < fanins.size(); ++k) {
      const SlotId f = fanins[k];
      // Pointwise: the CSR entry must be the slot of the k-th netlist fanin
      // (fanin order is semantic for MUX), and that slot must be live.
      if (p.node_of(f) != node.fanin[k] || p.slot_of(node.fanin[k]) != f) {
        r.add(CheckId::PlanCsrStale,
              "fanin " + std::to_string(k) + " of " + node_label(nl, id) +
                  " reads slot " + std::to_string(f) + " (node " +
                  std::to_string(p.node_of(f)) + "), netlist reads node " +
                  std::to_string(node.fanin[k]),
              id, s);
        continue;
      }
      if (is_dead_slot(p, f)) {
        r.add(CheckId::PlanCsrStale,
              node_label(nl, id) + " reads tombstoned slot " +
                  std::to_string(f),
              id, s);
      }
      // Topological legality: the value must exist before the read. Source
      // rows are pre-filled by the owner, so appended tie slots (ids after
      // their readers) are legal fanins anywhere.
      if (f >= s && p.op(f) != EvalOp::Source) {
        r.add(CheckId::PlanTopoOrder,
              "fanin slot " + std::to_string(f) + " of " +
                  node_label(nl, id) + " does not precede it",
              id, s);
      }
      // Mutual consistency: the fanin's fanout row must schedule this
      // reader. Const-typed fanins are exempt: an appended tie source has no
      // fanout row at all, and a tie onto an already-compiled const cell
      // relinks readers the compiled CSR cannot grow to record. Both are
      // sound — fanout rows only drive event scheduling, and a constant
      // never produces an event.
      const bool const_fanin = nl.is_alive(p.node_of(f)) &&
                               is_const(nl.node(p.node_of(f)).type);
      if (!is_dead_slot(p, f) && !const_fanin) {
        const auto fo = p.fanout(f);
        if (std::count(fo.begin(), fo.end(), s) <
            std::count(fanins.begin(), fanins.end(), f)) {
          r.add(CheckId::PlanFanoutSync,
                "fanout row of slot " + std::to_string(f) +
                    " is missing reader " + node_label(nl, id),
                id, f);
        }
      }
    }
  }
  // Reverse direction: every fanout edge between live slots must be read
  // back. Edges from/to Dead slots are the stale rows resync_structure
  // leaves in place — excluded by design.
  for (SlotId s = 0; s < n; ++s) {
    if (is_dead_slot(p, s)) continue;
    for (SlotId reader : p.fanout(s)) {
      if (is_dead_slot(p, reader)) continue;
      const auto fi = p.fanins(reader);
      if (std::find(fi.begin(), fi.end(), s) == fi.end()) {
        r.add(CheckId::PlanFanoutSync,
              "fanout row of slot " + std::to_string(s) +
                  " schedules slot " + std::to_string(reader) +
                  " which does not read it",
              p.node_of(s), s);
      }
    }
  }
}

void check_io_lists(const EvalPlan& p, const Netlist& nl, VerifyReport& r) {
  const auto check_list = [&](const char* what,
                              const std::vector<SlotId>& slots,
                              const std::vector<NodeId>& nodes) {
    if (slots.size() != nodes.size()) {
      r.add(CheckId::PlanIoLists,
            std::string(what) + " slot list has " +
                std::to_string(slots.size()) + " entries, netlist has " +
                std::to_string(nodes.size()));
      return;
    }
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (slots[k] != p.slot_of(nodes[k])) {
        r.add(CheckId::PlanIoLists,
              std::string(what) + " slot list entry " + std::to_string(k) +
                  " is " + std::to_string(slots[k]) + ", expected slot of " +
                  node_label(nl, nodes[k]),
              nodes[k], slots[k]);
      }
    }
  };
  check_list("input", p.input_slots(), nl.inputs());
  check_list("dff", p.dff_slots(), nl.dffs());
  check_list("output", p.output_slots(), nl.outputs());
}

void check_block_layout(const EvalPlan& p, VerifyReport& r) {
  // block_words() contract: 1 <= stripe <= words, and the stripe count it
  // implies covers the row exactly (NodeValues' stripe-major indexing and
  // evaluate_striped both trust this).
  for (const std::size_t w :
       {std::size_t{1}, std::size_t{2}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{1024}, std::size_t{65536}}) {
    const std::size_t bw = p.block_words(w);
    if (bw < 1 || bw > w) {
      r.add(CheckId::PlanBlockLayout,
            "block_words(" + std::to_string(w) + ") = " + std::to_string(bw) +
                " outside [1, words]");
    }
  }
}

/// Canonical per-node view for the equivalence diff: opcode with tie-source
/// folded to its constant, plus the fanin node-id sequence.
struct CanonSlot {
  EvalOp op = EvalOp::Dead;
  std::vector<NodeId> fanin;
};

CanonSlot canonicalize(const EvalPlan& p, const Netlist& nl, SlotId s) {
  CanonSlot c;
  c.op = p.op(s);
  const NodeId id = p.node_of(s);
  if (c.op == EvalOp::Source && nl.is_alive(id)) {
    const GateType t = nl.node(id).type;
    if (t == GateType::Const0) c.op = EvalOp::Const0;
    if (t == GateType::Const1) c.op = EvalOp::Const1;
  }
  if (has_fanin_row(c.op)) {
    const auto fanins = p.fanins(s);
    c.fanin.reserve(fanins.size());
    for (SlotId f : fanins) c.fanin.push_back(p.node_of(f));
  }
  return c;
}

/// Structural-equivalence diff: the patched plan, restricted to live slots
/// and canonicalised, must be isomorphic (keyed by node id — both plans
/// share the netlist's ids) to a fresh recompile of the netlist.
void check_equivalence(const EvalPlan& p, const Netlist& nl,
                       VerifyReport& r) {
  std::vector<CanonSlot> patched(nl.raw_size());
  std::vector<std::uint8_t> in_patched(nl.raw_size(), 0);
  for (SlotId s = 0; s < p.num_slots(); ++s) {
    if (is_dead_slot(p, s)) continue;
    const NodeId id = p.node_of(s);
    if (id >= nl.raw_size()) continue;  // reported by check_bijection
    patched[id] = canonicalize(p, nl, s);
    in_patched[id] = 1;
  }

  const EvalPlan fresh(nl);  // throws only on a cyclic netlist
  for (SlotId s = 0; s < fresh.num_slots(); ++s) {
    const NodeId id = fresh.node_of(s);
    if (id >= nl.raw_size()) continue;
    if (!in_patched[id]) {
      r.add(CheckId::PlanEquivalence,
            "fresh recompile has a slot for " + node_label(nl, id) +
                ", patched plan does not",
            id);
      continue;
    }
    in_patched[id] = 2;
    const CanonSlot want = canonicalize(fresh, nl, s);
    const CanonSlot& got = patched[id];
    if (got.op != want.op) {
      r.add(CheckId::PlanEquivalence,
            "canonical opcode of " + node_label(nl, id) + " is " +
                std::to_string(static_cast<int>(got.op)) +
                " patched vs " + std::to_string(static_cast<int>(want.op)) +
                " recompiled",
            id);
    } else if (got.fanin != want.fanin) {
      r.add(CheckId::PlanEquivalence,
            "fanin sequence of " + node_label(nl, id) +
                " differs between patched plan and recompile",
            id);
    }
  }
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (in_patched[id] == 1) {
      r.add(CheckId::PlanEquivalence,
            "patched plan has a live slot for " + node_label(nl, id) +
                ", fresh recompile does not",
            id);
    }
  }
}

}  // namespace

VerifyReport PlanChecker::run(const EvalPlan& p, const Netlist& nl,
                              const PlanCheckOptions& opt) {
  VerifyReport r;
  if (p.node_of_.size() != p.num_slots()) {
    r.add(CheckId::PlanCsrBounds,
          "node_of array has " + std::to_string(p.node_of_.size()) +
              " entries for " + std::to_string(p.num_slots()) + " slots");
    return r;  // nothing below is safe to walk
  }
  const bool fanin_ok =
      check_csr(p.num_slots(), r, "fanin", p.fanin_offset_, p.fanin_slots_);
  const bool fanout_ok = check_csr(p.num_slots(), r, "fanout",
                                   p.fanout_offset_, p.fanout_slots_);
  check_bijection(p, nl, r);
  check_opcodes(p, nl, r, fanin_ok);
  if (fanin_ok && fanout_ok) check_edges(p, nl, r);
  check_io_lists(p, nl, r);
  check_block_layout(p, r);
  if (opt.equivalence && fanin_ok) {  // canonicalize walks the fanin CSR
    try {
      check_equivalence(p, nl, r);
    } catch (const std::exception& e) {
      r.add(CheckId::PlanEquivalence,
            std::string("fresh recompile failed: ") + e.what());
    }
  }
  return r;
}

VerifyReport check_values_layout(const NodeValues& vals) {
  VerifyReport r;
  const EvalPlan* plan = vals.plan();
  if (plan != nullptr && vals.num_rows() != plan->num_slots()) {
    r.add(CheckId::PlanBlockLayout,
          "value matrix has " + std::to_string(vals.num_rows()) +
              " rows for a " + std::to_string(plan->num_slots()) +
              "-slot plan");
  }
  if (vals.striped()) {
    if (plan == nullptr) {
      r.add(CheckId::PlanBlockLayout,
            "stripe-major value matrix without a plan");
    } else if (vals.stripe_words() != plan->block_words(vals.num_words())) {
      r.add(CheckId::PlanBlockLayout,
            "stripe width " + std::to_string(vals.stripe_words()) +
                " disagrees with block_words(" +
                std::to_string(vals.num_words()) + ") = " +
                std::to_string(plan->block_words(vals.num_words())));
    }
    if (vals.stripe_words() >= vals.num_words()) {
      r.add(CheckId::PlanBlockLayout,
            "striped layout with stripe covering the whole row");
    }
  } else if (vals.stripe_words() != vals.num_words()) {
    r.add(CheckId::PlanBlockLayout,
          "contiguous layout reports stripe width " +
              std::to_string(vals.stripe_words()));
  }
  return r;
}

}  // namespace tz
