// CampaignChecker: scheduling invariants of the campaign driver
// (campaign/driver.hpp), validated over a plain-data CampaignView snapshot.
//
// The driver's byte-identity contract ("the merged artifact does not depend
// on shard count, thread count or interruptions") rests on three structural
// facts this checker pins down independently of the code that maintains
// them: the deterministic job->shard map is a partition of the expanded
// grid, each shard's JSONL checkpoint only ever accumulates well-formed
// rows for its own jobs (append-only, no duplicates — the resume path's
// skip-completed set is only sound under exactly this), and the merged
// artifact is a bijection with the grid. Everything is string/index
// comparisons over the view: O(total rows) with a hash set.
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "verify/verify.hpp"

namespace tz {

VerifyReport CampaignChecker::run(const CampaignView& view) {
  VerifyReport report;

  // ---- CampPartition: assignment covers every job exactly once, in range.
  if (view.job_shard.size() != view.job_ids.size()) {
    report.add(CheckId::CampPartition,
               "assignment size " + std::to_string(view.job_shard.size()) +
                   " != job count " + std::to_string(view.job_ids.size()));
  }
  std::unordered_map<std::string, std::size_t> id_to_shard;
  id_to_shard.reserve(view.job_ids.size());
  for (std::size_t i = 0; i < view.job_ids.size(); ++i) {
    const std::string& id = view.job_ids[i];
    const std::size_t shard =
        i < view.job_shard.size() ? view.job_shard[i] : 0;
    if (i < view.job_shard.size() && shard >= view.num_shards) {
      report.add(CheckId::CampPartition,
                 "job '" + id + "' assigned to shard " +
                     std::to_string(shard) + " of " +
                     std::to_string(view.num_shards));
    }
    if (!id_to_shard.emplace(id, shard).second) {
      report.add(CheckId::CampPartition,
                 "job id '" + id + "' expanded more than once");
    }
  }

  // ---- CampShardRows: each checkpoint file holds parseable, owned,
  // first-seen rows. Duplicates across files are also a shard-rows failure
  // (the same completed job must never be recorded by two shards).
  std::unordered_set<std::string> seen_rows;
  for (std::size_t s = 0; s < view.shard_rows.size(); ++s) {
    if (s >= view.num_shards) {
      report.add(CheckId::CampShardRows,
                 "checkpoint file for shard " + std::to_string(s) +
                     " but only " + std::to_string(view.num_shards) +
                     " shards");
      continue;
    }
    for (const std::string& id : view.shard_rows[s]) {
      if (id.empty()) {
        report.add(CheckId::CampShardRows,
                   "shard " + std::to_string(s) + " has an unparseable row");
        continue;
      }
      const auto it = id_to_shard.find(id);
      if (it == id_to_shard.end()) {
        report.add(CheckId::CampShardRows,
                   "shard " + std::to_string(s) + " row '" + id +
                       "' is not an expanded job");
        continue;
      }
      if (it->second != s) {
        report.add(CheckId::CampShardRows,
                   "row '" + id + "' recorded by shard " + std::to_string(s) +
                       " but assigned to shard " + std::to_string(it->second));
      }
      if (!seen_rows.insert(id).second) {
        report.add(CheckId::CampShardRows,
                   "row '" + id + "' recorded more than once");
      }
    }
  }

  // ---- Merged artifact: bijection with the expanded grid.
  if (view.check_merged) {
    std::unordered_set<std::string> merged;
    merged.reserve(view.merged_ids.size());
    for (const std::string& id : view.merged_ids) {
      if (id_to_shard.find(id) == id_to_shard.end()) {
        report.add(CheckId::CampMergeDuplicate,
                   "merged row '" + id + "' is not an expanded job");
        continue;
      }
      if (!merged.insert(id).second) {
        report.add(CheckId::CampMergeDuplicate,
                   "merged artifact carries '" + id + "' more than once");
      }
    }
    for (const std::string& id : view.job_ids) {
      if (merged.find(id) == merged.end()) {
        report.add(CheckId::CampMergeMissing,
                   "merged artifact is missing '" + id + "'");
      }
    }
  }

  return report;
}

}  // namespace tz
