#include "verify/verify.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tz {

std::string_view to_string(CheckId id) {
  switch (id) {
    case CheckId::NetDanglingFanin: return "net-dangling-fanin";
    case CheckId::NetDuplicateName: return "net-duplicate-name";
    case CheckId::NetBadArity: return "net-bad-arity";
    case CheckId::NetInputList: return "net-input-list";
    case CheckId::NetOutputList: return "net-output-list";
    case CheckId::NetDffList: return "net-dff-list";
    case CheckId::NetFanoutSync: return "net-fanout-sync";
    case CheckId::NetPhantomFanout: return "net-phantom-fanout";
    case CheckId::NetCycle: return "net-cycle";
    case CheckId::NetOrphan: return "net-orphan";
    case CheckId::NetLiveCount: return "net-live-count";
    case CheckId::PlanSlotBijection: return "plan-slot-bijection";
    case CheckId::PlanOpcode: return "plan-opcode";
    case CheckId::PlanCsrBounds: return "plan-csr-bounds";
    case CheckId::PlanCsrStale: return "plan-csr-stale";
    case CheckId::PlanFanoutSync: return "plan-fanout-sync";
    case CheckId::PlanTopoOrder: return "plan-topo-order";
    case CheckId::PlanIoLists: return "plan-io-lists";
    case CheckId::PlanBlockLayout: return "plan-block-layout";
    case CheckId::PlanEquivalence: return "plan-equivalence";
    case CheckId::PackSiteSlot: return "pack-site-slot";
    case CheckId::PackLaneBleed: return "pack-lane-bleed";
    case CheckId::PackLaneBijection: return "pack-lane-bijection";
    case CheckId::CampPartition: return "camp-partition";
    case CheckId::CampShardRows: return "camp-shard-rows";
    case CheckId::CampMergeDuplicate: return "camp-merge-duplicate";
    case CheckId::CampMergeMissing: return "camp-merge-missing";
    case CheckId::SatArenaBounds: return "sat-arena-bounds";
    case CheckId::SatWatchBijection: return "sat-watch-bijection";
    case CheckId::SatBinaryWatch: return "sat-binary-watch";
  }
  return "unknown-check";
}

std::size_t VerifyReport::count(CheckId id) const {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (v.id == id) ++n;
  }
  return n;
}

void VerifyReport::add(CheckId id, std::string message, NodeId node,
                       SlotId slot) {
  violations.push_back(Violation{id, node, slot, std::move(message)});
}

void VerifyReport::merge(VerifyReport other) {
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::string VerifyReport::format() const {
  if (ok()) return "no violations\n";
  std::ostringstream os;
  os << violations.size() << " violation(s):\n";
  for (const Violation& v : violations) {
    os << "  [" << to_string(v.id) << "]";
    if (v.node != kNoNode) os << " node " << v.node;
    if (v.slot != kNoSlot) os << " slot " << v.slot;
    os << ": " << v.message << "\n";
  }
  return os.str();
}

namespace {

/// Minimal JSON string escaping: quotes, backslashes and control bytes (the
/// only things checker messages can contain beyond plain ASCII).
void json_escape(std::ostringstream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string VerifyReport::to_json() const {
  std::ostringstream os;
  os << "{\"ok\": " << (ok() ? "true" : "false") << ", \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i != 0) os << ", ";
    os << "{\"check\": \"" << to_string(v.id) << "\", \"node\": ";
    if (v.node != kNoNode) {
      os << v.node;
    } else {
      os << "null";
    }
    os << ", \"slot\": ";
    if (v.slot != kNoSlot) {
      os << v.slot;
    } else {
      os << "null";
    }
    os << ", \"message\": \"";
    json_escape(os, v.message);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

namespace {

std::string verify_what(const std::string& phase, const VerifyReport& r) {
  return "tz::verify failed at " + phase + ": " + r.format();
}

/// Same tri-state env convention as TZ_EVAL_PLAN/TZ_SIMD (eval_plan.cpp):
/// "0"/"false"/"off" disables, any other value enables, unset falls through
/// to the build-type default.
int read_check_env() {
  const char* env = std::getenv("TZ_CHECK");
  if (env == nullptr) {
#if defined(NDEBUG)
    return 0;  // Release hot paths: off unless explicitly requested.
#else
    return 1;  // Debug/test builds: checkers armed by default.
#endif
  }
  const std::string_view v(env);
  const bool off =
      v == "0" || v == "false" || v == "FALSE" || v == "off" || v == "OFF";
  return off ? 0 : 1;
}

std::atomic<int>& check_override() {
  static std::atomic<int> mode{-1};
  return mode;
}

}  // namespace

VerifyError::VerifyError(std::string phase, VerifyReport report)
    : std::runtime_error(verify_what(phase, report)),
      phase_(std::move(phase)),
      report_(std::move(report)) {}

bool check_enabled() {
  const int ovr = check_override().load(std::memory_order_relaxed);
  if (ovr >= 0) return ovr != 0;
  static const int env_mode = read_check_env();
  return env_mode != 0;
}

void set_check_enabled(int mode) {
  check_override().store(mode < 0 ? -1 : (mode != 0),
                         std::memory_order_relaxed);
}

void verify_or_throw(const Netlist& nl, const EvalPlan* plan,
                     std::string_view phase, const NetlistCheckOptions& nopt,
                     const PlanCheckOptions& popt) {
  VerifyReport report = NetlistChecker::run(nl, nopt);
  if (plan != nullptr) report.merge(PlanChecker::run(*plan, nl, popt));
  if (!report.ok()) throw VerifyError(std::string(phase), std::move(report));
}

}  // namespace tz
