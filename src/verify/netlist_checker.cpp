// NetlistChecker: structural sanity sweeps over a (possibly corrupt) Netlist.
//
// Unlike Netlist::check() — which throws on the first violation — every sweep
// here collects findings into the report and guards all indexing, so a badly
// corrupted structure still yields a complete diagnosis instead of a crash.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "verify/verify.hpp"

namespace tz {

namespace {

std::string node_label(const Netlist& nl, NodeId id) {
  if (id >= nl.raw_size()) return "<out-of-range>";
  return "'" + nl.node(id).name + "'";
}

void check_fanin_edges(const Netlist& nl, VerifyReport& r) {
  for (NodeId i = 0; i < nl.raw_size(); ++i) {
    const Node& n = nl.node(i);
    if (n.dead) continue;

    const Arity a = arity_of(n.type);
    const int nf = static_cast<int>(n.fanin.size());
    if (nf < a.min || (a.max >= 0 && nf > a.max)) {
      r.add(CheckId::NetBadArity,
            node_label(nl, i) + " (" + std::string(to_string(n.type)) +
                ") has " + std::to_string(nf) + " fanins",
            i);
    }

    for (NodeId f : n.fanin) {
      if (!nl.is_alive(f)) {
        r.add(CheckId::NetDanglingFanin,
              node_label(nl, i) + " reads " +
                  (f < nl.raw_size() ? "dead node " + node_label(nl, f)
                                     : "invalid id " + std::to_string(f)),
              i);
        continue;
      }
      // Count-aware: a node reading the same signal twice must appear twice
      // in that signal's fanout (remove/restore keeps multiplicity).
      const auto& fo = nl.node(f).fanout;
      const auto reads =
          std::count(n.fanin.begin(), n.fanin.end(), f);
      if (std::count(fo.begin(), fo.end(), i) < reads) {
        r.add(CheckId::NetFanoutSync,
              "fanout of " + node_label(nl, f) + " is missing reader " +
                  node_label(nl, i),
              f);
      }
    }

    for (NodeId reader : n.fanout) {
      if (!nl.is_alive(reader)) {
        r.add(CheckId::NetPhantomFanout,
              node_label(nl, i) + " records dead/invalid reader " +
                  std::to_string(reader),
              i);
        continue;
      }
      const auto& fi = nl.node(reader).fanin;
      if (std::find(fi.begin(), fi.end(), i) == fi.end()) {
        r.add(CheckId::NetPhantomFanout,
              node_label(nl, i) + " records reader " +
                  node_label(nl, reader) + " that does not read it",
              i);
      }
    }
  }
}

void check_name_index(const Netlist& nl,
                      const std::unordered_map<std::string, NodeId>& by_name,
                      VerifyReport& r) {
  for (NodeId i = 0; i < nl.raw_size(); ++i) {
    const Node& n = nl.node(i);
    if (n.dead) continue;
    auto it = by_name.find(n.name);
    if (it == by_name.end()) {
      r.add(CheckId::NetDuplicateName,
            "live node " + node_label(nl, i) + " missing from name index", i);
    } else if (it->second != i) {
      r.add(CheckId::NetDuplicateName,
            "name " + node_label(nl, i) + " indexed to node " +
                std::to_string(it->second) + " (duplicate or stale entry)",
            i);
    }
  }
  for (const auto& [name, id] : by_name) {
    if (!nl.is_alive(id)) {
      r.add(CheckId::NetDuplicateName,
            "name index entry '" + name + "' points at dead/invalid node",
            id < nl.raw_size() ? id : kNoNode);
    } else if (nl.node(id).name != name) {
      r.add(CheckId::NetDuplicateName,
            "name index entry '" + name + "' points at node named " +
                node_label(nl, id),
            id);
    }
  }
}

void check_role_list(const Netlist& nl, VerifyReport& r, CheckId id,
                     const std::vector<NodeId>& list, GateType role,
                     const char* what) {
  std::vector<std::uint8_t> listed(nl.raw_size(), 0);
  for (NodeId e : list) {
    if (!nl.is_alive(e)) {
      r.add(id, std::string(what) + " list entry " + std::to_string(e) +
                    " is dead or invalid");
      continue;
    }
    if (nl.node(e).type != role) {
      r.add(id, std::string(what) + " list entry " + node_label(nl, e) +
                    " has type " + std::string(to_string(nl.node(e).type)),
            e);
    }
    if (listed[e]++) {
      r.add(id, std::string(what) + " list entry " + node_label(nl, e) +
                    " duplicated",
            e);
    }
  }
  for (NodeId i = 0; i < nl.raw_size(); ++i) {
    const Node& n = nl.node(i);
    if (!n.dead && n.type == role && !listed[i]) {
      r.add(id, "live " + std::string(to_string(role)) + " node " +
                    node_label(nl, i) + " missing from " + what + " list",
            i);
    }
  }
}

void check_output_list(const Netlist& nl, VerifyReport& r) {
  std::vector<std::uint8_t> listed(nl.raw_size(), 0);
  for (NodeId o : nl.outputs()) {
    if (!nl.is_alive(o)) {
      r.add(CheckId::NetOutputList,
            "output list entry " + std::to_string(o) + " is dead or invalid");
      continue;
    }
    // mark_output is idempotent, so a duplicate means a broken swap/restore.
    if (listed[o]++) {
      r.add(CheckId::NetOutputList,
            "output list entry " + node_label(nl, o) + " duplicated", o);
    }
  }
}

/// Kahn's sweep with DFF edges cut, mirroring Netlist::topo_order() but
/// collecting the stuck nodes instead of throwing. Edges already reported as
/// dangling are skipped so a corrupt id cannot crash the walk.
void check_acyclic(const Netlist& nl, VerifyReport& r) {
  std::vector<std::uint32_t> indeg(nl.raw_size(), 0);
  for (NodeId i = 0; i < nl.raw_size(); ++i) {
    const Node& n = nl.node(i);
    if (n.dead || is_source(n.type) || is_sequential(n.type)) continue;
    for (NodeId f : n.fanin) {
      if (nl.is_alive(f)) ++indeg[i];
    }
  }
  std::vector<NodeId> ready;
  std::vector<std::uint8_t> done(nl.raw_size(), 0);
  std::size_t processed = 0, live = 0;
  for (NodeId i = 0; i < nl.raw_size(); ++i) {
    if (!nl.node(i).dead) {
      ++live;
      if (indeg[i] == 0) {
        ready.push_back(i);
        done[i] = 1;
      }
    }
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    ++processed;
    for (NodeId reader : nl.node(id).fanout) {
      if (!nl.is_alive(reader)) continue;
      const Node& rd = nl.node(reader);
      if (is_sequential(rd.type) || is_source(rd.type)) continue;
      // Only decrement for edges that were counted in indeg (the reader
      // actually reads id): a phantom fanout entry must not release a node
      // early and mask a real cycle.
      const auto& fi = rd.fanin;
      if (std::find(fi.begin(), fi.end(), id) == fi.end()) continue;
      if (indeg[reader] > 0) --indeg[reader];
      if (indeg[reader] == 0 && !done[reader]) {
        ready.push_back(reader);
        done[reader] = 1;  // guard against duplicate fanout entries
      }
    }
  }
  if (processed < live) {
    NodeId first = kNoNode;
    for (NodeId i = 0; i < nl.raw_size(); ++i) {
      if (!nl.node(i).dead && !done[i]) {
        first = i;
        break;
      }
    }
    r.add(CheckId::NetCycle,
          std::to_string(live - processed) +
              " live node(s) unreachable in the combinational topo sweep "
              "(cycle through " +
              node_label(nl, first) + ")",
          first);
  }
}

void check_orphans(const Netlist& nl, VerifyReport& r) {
  for (NodeId i = 0; i < nl.raw_size(); ++i) {
    const Node& n = nl.node(i);
    if (n.dead || !is_combinational(n.type) || is_const(n.type)) continue;
    if (n.fanout.empty() && !nl.is_output(i)) {
      r.add(CheckId::NetOrphan,
            node_label(nl, i) +
                " is a live gate with no readers and no output marking",
            i);
    }
  }
}

}  // namespace

VerifyReport NetlistChecker::run(const Netlist& nl,
                                 const NetlistCheckOptions& opt) {
  VerifyReport r;
  check_fanin_edges(nl, r);
  check_name_index(nl, nl.by_name_, r);
  check_role_list(nl, r, CheckId::NetInputList, nl.inputs(), GateType::Input,
                  "input");
  check_role_list(nl, r, CheckId::NetDffList, nl.dffs(), GateType::Dff,
                  "dff");
  check_output_list(nl, r);
  check_acyclic(nl, r);
  if (!opt.allow_unread_gates) check_orphans(nl, r);

  std::size_t live = 0;
  for (NodeId i = 0; i < nl.raw_size(); ++i) {
    if (!nl.node(i).dead) ++live;
  }
  if (live != nl.live_count()) {
    r.add(CheckId::NetLiveCount,
          "live_count() is " + std::to_string(nl.live_count()) + " but " +
              std::to_string(live) + " nodes are live");
  }
  return r;
}

}  // namespace tz
