// SatChecker: arena/watch integrity sweep for the CDCL solver.
//
// The solver's hot paths (propagate's in-place watched-literal swaps,
// reduce_db detachment, arena garbage collection's forward-pointer
// relocation) all edit the clause store and the watch structures in tandem;
// a missed update shows up as a wrong UNSAT miles from the cause. This
// checker re-derives the expected watch structures from the registered
// clause lists and diffs them against the live ones.
#include <cstdint>
#include <map>
#include <sstream>
#include <utility>

#include "sat/solver.hpp"
#include "verify/verify.hpp"

namespace tz {
namespace {

std::string lit_str(sat::Lit l) {
  std::ostringstream os;
  os << (l.neg() ? "~" : "") << 'v' << l.var();
  return os.str();
}

}  // namespace

VerifyReport SatChecker::run(const sat::Solver& solver) {
  VerifyReport rep;
  const sat::ClauseArena& arena = solver.arena_;
  const int num_vars = solver.num_vars();

  // --- SatArenaBounds: every registered ref names a sane clause. ---------
  // refs[cr] = clause size, for refs that passed the bounds screen; only
  // those participate in the watch diffs below.
  std::map<sat::ClauseRef, std::uint32_t> refs;
  const auto screen = [&](const std::vector<sat::ClauseRef>& list,
                          const char* what) {
    for (const sat::ClauseRef cr : list) {
      if (cr >= arena.size_words()) {
        rep.add(CheckId::SatArenaBounds,
                std::string(what) + " clause ref " + std::to_string(cr) +
                    " past arena end " + std::to_string(arena.size_words()));
        continue;
      }
      if (arena.relocated(cr)) {
        rep.add(CheckId::SatArenaBounds,
                std::string(what) + " clause ref " + std::to_string(cr) +
                    " still carries a relocation forward pointer");
        continue;
      }
      const std::uint32_t sz = arena.size(cr);
      if (sz < 2 || cr + arena.words(cr) > arena.size_words()) {
        rep.add(CheckId::SatArenaBounds,
                std::string(what) + " clause ref " + std::to_string(cr) +
                    " header insane (size " + std::to_string(sz) + ")");
        continue;
      }
      bool lits_ok = true;
      for (std::uint32_t i = 0; i < sz; ++i) {
        const sat::Lit l = arena.lit(cr, i);
        if (l.var() < 0 || l.var() >= num_vars) {
          rep.add(CheckId::SatArenaBounds,
                  std::string(what) + " clause ref " + std::to_string(cr) +
                      " literal " + std::to_string(i) + " names variable " +
                      std::to_string(l.var()) + " of " +
                      std::to_string(num_vars));
          lits_ok = false;
        }
      }
      if (!lits_ok) continue;
      if (!refs.emplace(cr, sz).second) {
        rep.add(CheckId::SatArenaBounds,
                std::string("clause ref ") + std::to_string(cr) +
                    " registered twice across clause lists");
      }
    }
  };
  screen(solver.clauses_, "problem");
  screen(solver.learnts_, "learnt");

  // --- SatWatchBijection: long clauses <-> watcher lists. ----------------
  // Expected: clause cr with watched literals c0, c1 appears exactly once in
  // watches_[~c0] and once in watches_[~c1], nowhere else.
  std::map<std::pair<std::uint32_t, sat::ClauseRef>, int> expected;
  for (const auto& [cr, sz] : refs) {
    if (sz == 2) continue;
    expected[{static_cast<std::uint32_t>((~arena.lit(cr, 0)).x), cr}] = 0;
    expected[{static_cast<std::uint32_t>((~arena.lit(cr, 1)).x), cr}] = 0;
  }
  for (std::uint32_t lx = 0; lx < solver.watches_.size(); ++lx) {
    for (const sat::Solver::Watcher& w : solver.watches_[lx]) {
      const auto it = refs.find(w.cref);
      if (it == refs.end() || it->second == 2) {
        rep.add(CheckId::SatWatchBijection,
                "watch list of " + lit_str(sat::Lit{static_cast<int>(lx)}) +
                    " holds unregistered or binary clause ref " +
                    std::to_string(w.cref));
        continue;
      }
      const auto ex = expected.find({lx, w.cref});
      if (ex == expected.end()) {
        // A watcher on a literal the clause does not watch (or does not even
        // contain) is a dead watch: it can silently skip propagations.
        rep.add(CheckId::SatWatchBijection,
                "dead watch: clause ref " + std::to_string(w.cref) +
                    " watched on " +
                    lit_str(sat::Lit{static_cast<int>(lx)}) +
                    " which is not one of its watched literals");
        continue;
      }
      if (++ex->second > 1) {
        rep.add(CheckId::SatWatchBijection,
                "clause ref " + std::to_string(w.cref) +
                    " watched more than once on " +
                    lit_str(sat::Lit{static_cast<int>(lx)}));
      }
      bool blocker_in_clause = false;
      for (std::uint32_t i = 0; i < it->second; ++i) {
        if (arena.lit(w.cref, i) == w.blocker) blocker_in_clause = true;
      }
      if (!blocker_in_clause) {
        rep.add(CheckId::SatWatchBijection,
                "watcher blocker " + lit_str(w.blocker) +
                    " is not a literal of clause ref " +
                    std::to_string(w.cref));
      }
    }
  }
  for (const auto& [key, count] : expected) {
    if (count == 0) {
      rep.add(CheckId::SatWatchBijection,
              "clause ref " + std::to_string(key.second) +
                  " missing from the watch list of " +
                  lit_str(sat::Lit{static_cast<int>(key.first)}));
    }
  }

  // --- SatBinaryWatch: binary clauses <-> binary watch lists. ------------
  std::map<std::pair<std::uint32_t, sat::ClauseRef>, int> bin_expected;
  for (const auto& [cr, sz] : refs) {
    if (sz != 2) continue;
    bin_expected[{static_cast<std::uint32_t>((~arena.lit(cr, 0)).x), cr}] = 0;
    bin_expected[{static_cast<std::uint32_t>((~arena.lit(cr, 1)).x), cr}] = 0;
  }
  for (std::uint32_t lx = 0; lx < solver.bin_watches_.size(); ++lx) {
    for (const sat::Solver::BinWatcher& w : solver.bin_watches_[lx]) {
      const auto it = refs.find(w.cref);
      if (it == refs.end() || it->second != 2) {
        rep.add(CheckId::SatBinaryWatch,
                "binary watch list of " +
                    lit_str(sat::Lit{static_cast<int>(lx)}) +
                    " holds non-binary or unregistered clause ref " +
                    std::to_string(w.cref));
        continue;
      }
      const auto ex = bin_expected.find({lx, w.cref});
      if (ex == bin_expected.end()) {
        rep.add(CheckId::SatBinaryWatch,
                "binary clause ref " + std::to_string(w.cref) +
                    " watched on " + lit_str(sat::Lit{static_cast<int>(lx)}) +
                    " which does not falsify either of its literals");
        continue;
      }
      if (++ex->second > 1) {
        rep.add(CheckId::SatBinaryWatch,
                "binary clause ref " + std::to_string(w.cref) +
                    " watched more than once on " +
                    lit_str(sat::Lit{static_cast<int>(lx)}));
        continue;
      }
      // The implied literal must be the clause literal the watch does not
      // falsify — a stale `other` propagates the wrong fact.
      const sat::Lit falsified{~sat::Lit{static_cast<int>(lx)}};
      const sat::Lit c0 = arena.lit(w.cref, 0);
      const sat::Lit c1 = arena.lit(w.cref, 1);
      const sat::Lit other = (c0 == falsified) ? c1 : c0;
      if (w.other != other) {
        rep.add(CheckId::SatBinaryWatch,
                "binary watcher of clause ref " + std::to_string(w.cref) +
                    " implies " + lit_str(w.other) + " instead of " +
                    lit_str(other));
      }
    }
  }
  for (const auto& [key, count] : bin_expected) {
    if (count == 0) {
      rep.add(CheckId::SatBinaryWatch,
              "binary clause ref " + std::to_string(key.second) +
                  " missing from the binary watch list of " +
                  lit_str(sat::Lit{static_cast<int>(key.first)}));
    }
  }
  return rep;
}

}  // namespace tz
